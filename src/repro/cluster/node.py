"""Compute-node model: cores, memory, and the client page cache.

The page cache matters for one specific effect the paper calls out
(§IV-C): at 1024 concurrent streams the measured read bandwidth *exceeds*
the 1.25 GB/s theoretical peak of the storage network because checkpoint
data written moments earlier is still resident in the compute nodes' page
caches.  We model a per-node LRU cache at block granularity; a read hit
bypasses the storage system entirely.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Tuple

from ..errors import ConfigError
from ..units import GiB, MiB

__all__ = ["NodeSpec", "PageCache", "Node"]


@dataclass(frozen=True)
class NodeSpec:
    """Static description of one compute node."""

    cores: int = 16
    mem_bytes: int = 32 * GiB
    nic_bw: float = 3.2e9  # interconnect NIC, bytes/s (IB 4x QDR-ish)
    mem_bw: float = 8e9  # intra-node copy bandwidth, bytes/s
    cache_fraction: float = 0.5  # fraction of RAM usable as page cache

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise ConfigError(f"node needs >= 1 core, got {self.cores}")
        if self.mem_bytes <= 0 or self.nic_bw <= 0 or self.mem_bw <= 0:
            raise ConfigError("node memory and bandwidths must be positive")
        if not (0.0 <= self.cache_fraction <= 1.0):
            raise ConfigError("cache_fraction must be in [0, 1]")


class PageCache:
    """Per-node LRU page cache at fixed block granularity.

    Keys are ``(file_uid, block_index)``.  ``insert`` populates blocks (a
    write or a completed read fill); ``hit_bytes`` reports how much of a
    byte range is currently resident, touching the blocks it finds (LRU
    update).  Capacity counts blocks; partial blocks round up, which is
    how a real page cache behaves too.
    """

    def __init__(self, capacity_bytes: int, block_size: int = MiB):
        if block_size <= 0:
            raise ConfigError("cache block size must be positive")
        self.block_size = block_size
        self.capacity_blocks = max(0, capacity_bytes // block_size)
        self._blocks: "OrderedDict[Tuple[int, int], None]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._blocks)

    def _block_range(self, offset: int, length: int) -> range:
        if length <= 0:
            return range(0)
        return range(offset // self.block_size, (offset + length - 1) // self.block_size + 1)

    def insert(self, file_uid: int, offset: int, length: int, *,
               full_blocks_only: bool = False) -> None:
        """Populate the blocks covering [offset, offset+length).

        ``full_blocks_only`` marks only blocks the range covers entirely —
        the right semantics for read fills, where marking a partially-read
        block resident would let later reads skip storage for bytes that
        never crossed the wire.
        """
        if self.capacity_blocks == 0:
            return
        if full_blocks_only:
            first = -(-offset // self.block_size)
            last = (offset + length) // self.block_size
            blocks_iter = range(first, last)
        else:
            blocks_iter = self._block_range(offset, length)
        blocks = self._blocks
        for b in blocks_iter:
            key = (file_uid, b)
            if key in blocks:
                blocks.move_to_end(key)
            else:
                blocks[key] = None
                if len(blocks) > self.capacity_blocks:
                    blocks.popitem(last=False)
                    self.evictions += 1

    def hit_bytes(self, file_uid: int, offset: int, length: int) -> int:
        """Bytes of [offset, offset+length) resident in the cache (block-granular)."""
        if length <= 0 or self.capacity_blocks == 0:
            self.misses += 1 if length > 0 else 0
            return 0
        blocks = self._blocks
        hit = 0
        for b in self._block_range(offset, length):
            key = (file_uid, b)
            lo = max(offset, b * self.block_size)
            hi = min(offset + length, (b + 1) * self.block_size)
            if key in blocks:
                blocks.move_to_end(key)
                hit += hi - lo
                self.hits += 1
            else:
                self.misses += 1
        return hit

    def invalidate_file(self, file_uid: int) -> None:
        """Drop every cached block of one file (e.g. after unlink/truncate)."""
        for key in [k for k in self._blocks if k[0] == file_uid]:
            del self._blocks[key]

    def clear(self) -> None:
        self._blocks.clear()


class Node:
    """One compute node: identity, spec, NIC fair-share servers, page cache.

    NIC servers are attached by the :class:`~repro.cluster.network.Interconnect`
    so that a node participates in exactly one fabric.
    """

    def __init__(self, node_id: int, spec: NodeSpec, env) -> None:
        self.id = node_id
        self.spec = spec
        self.env = env
        self.page_cache = PageCache(int(spec.mem_bytes * spec.cache_fraction))
        # Set by Interconnect.attach(); None until then.
        self.nic_out = None
        self.nic_in = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Node {self.id} cores={self.spec.cores}>"
