"""MPI-IO file objects with independent and collective (two-phase) I/O.

``MPIFile.open`` is collective over the job communicator and routes
through an ADIO driver (UFS = direct PFS, PLFS = the middleware).  The
``*_at_all`` operations implement two-phase collective buffering [18]
when the ``cb_enable`` hint is set: ranks exchange their small strided
pieces over the compute interconnect so that a few aggregator ranks issue
large contiguous file-system requests — the optimization the paper turns
on for LANL 3's 1024-byte records (§IV-D6).
"""

from __future__ import annotations

from typing import Generator, List, Optional, Sequence, Tuple

from ..errors import InvalidArgument
from ..pfs.data import CompositeData, DataSpec, DataView
from ..units import KiB
from .adio import ADIODriver
from .hints import Hints

__all__ = ["MPIFile"]

_DOMAIN_ALIGN = 64 * KiB  # aggregator file domains align here (ROMIO-style)

Piece = Tuple[int, DataSpec]  # (file offset, content)
Request = Tuple[int, int]     # (file offset, length)


class MPIFile:
    """One rank's view of a collectively opened file."""

    def __init__(self, ctx, driver: ADIODriver, handle, hints: Hints,
                 path: str, mode: str):
        self.ctx = ctx
        self.driver = driver
        self.handle = handle
        self.hints = hints
        self.path = path
        self.mode = mode
        self.closed = False

    # -- lifecycle --------------------------------------------------------------
    @classmethod
    def open(cls, ctx, path: str, mode: str, driver: ADIODriver,
             hints: Optional[Hints] = None, *, independent: bool = False) -> Generator:
        """Collective open; every rank of ``ctx.comm`` must call it.

        ``independent=True`` skips the rank-0 create choreography — used
        for N-N workloads where every rank opens its *own* path (the file
        is still usable with collective ops afterwards).
        """
        comm = None if independent else ctx.comm
        handle = yield from driver.open(ctx.client, comm, path, mode)
        return cls(ctx, driver, handle, hints or Hints(), path, mode)

    def close(self) -> Generator:
        """Collective close (PLFS flatten aggregation happens here)."""
        if self.closed:
            raise InvalidArgument(self.path, "double close")
        yield from self.driver.close(self.handle, self.ctx.comm)
        self.closed = True

    def size(self) -> int:
        return self.driver.size(self.handle)

    # -- independent I/O ---------------------------------------------------------
    def write_at(self, offset: int, spec: DataSpec) -> Generator:
        yield from self.driver.write_at(self.handle, offset, spec)

    def read_at(self, offset: int, length: int) -> Generator:
        view = yield from self.driver.read_at(self.handle, offset, length)
        return view

    # -- collective I/O -----------------------------------------------------------
    def write_at_all(self, pieces: Sequence[Piece]) -> Generator:
        """Collective write of this rank's (offset, spec) pieces.

        Without ``cb_enable`` each rank writes its own pieces and the call
        just synchronizes.  With it, two-phase exchange + aggregation runs.
        """
        comm = self.ctx.comm
        if not self.hints.cb_enable or comm.size == 1:
            for offset, spec in pieces:
                yield from self.write_at(offset, spec)
            yield from comm.barrier()
            return
        yield from self._two_phase_write(list(pieces))

    def read_at_all(self, requests: Sequence[Request]) -> Generator:
        """Collective read; returns one DataView per request, in order."""
        comm = self.ctx.comm
        if not self.hints.cb_enable or comm.size == 1:
            out = []
            for offset, length in requests:
                view = yield from self.read_at(offset, length)
                out.append(view)
            yield from comm.barrier()
            return out
        result = yield from self._two_phase_read(list(requests))
        return result

    # -- two-phase machinery -----------------------------------------------------
    def _aggregators(self) -> List[int]:
        comm = self.ctx.comm
        want = self.hints.cb_nodes or self.ctx.cluster.nodes_used(comm.size)
        want = max(1, min(want, comm.size))
        return sorted({(i * comm.size) // want for i in range(want)})

    @staticmethod
    def _domain_of(offset: int, lo: int, dsize: int, ndomains: int) -> int:
        return min((offset - lo) // dsize, ndomains - 1)

    def _domain_bounds(self, all_meta) -> Optional[Tuple[int, int, int, List[int]]]:
        spans = [(off, off + ln) for meta in all_meta for off, ln in meta]
        if not spans:
            return None
        lo = min(s for s, _ in spans)
        hi = max(e for _, e in spans)
        aggs = self._aggregators()
        dsize = -(-(hi - lo) // len(aggs))  # ceil
        dsize = -(-dsize // _DOMAIN_ALIGN) * _DOMAIN_ALIGN  # align up
        return lo, hi, dsize, aggs

    def _two_phase_write(self, pieces: List[Piece]) -> Generator:
        comm, env = self.ctx.comm, self.ctx.env
        meta = [(off, spec.length) for off, spec in pieces]
        all_meta = yield from comm.allgather(meta, nbytes=16 * max(1, len(meta)))
        bounds = self._domain_bounds(all_meta)
        if bounds is None:
            yield from comm.barrier()
            return
        lo, hi, dsize, aggs = bounds
        nd = len(aggs)
        tag = ("_cb_w", comm._next_tag()[1])
        # Split my pieces at domain boundaries, group per owner.
        per_owner: dict = {}
        for off, spec in pieces:
            pos = 0
            while pos < spec.length:
                d = self._domain_of(off + pos, lo, dsize, nd)
                dom_end = lo + (d + 1) * dsize
                n = min(spec.length - pos, dom_end - (off + pos))
                per_owner.setdefault(aggs[d], []).append((off + pos, spec.slice(pos, n)))
                pos += n
        # Dispatch to owners (own contribution stays local).
        local = per_owner.pop(comm.rank, [])
        sends = []
        # Insertion order is a deterministic function of the (rank-ordered)
        # request list and ascending domain walk.
        for owner, chunk in per_owner.items():  # repro: noqa[REP004] -- insertion order derives from the rank-ordered request walk
            nbytes = sum(s.length for _, s in chunk)
            sends.append(env.process(comm.send(owner, chunk, nbytes, tag)))
        # If I am an aggregator, collect and write my domain.
        if comm.rank in aggs:
            expect = set()
            for r, meta_r in enumerate(all_meta):
                if r == comm.rank:
                    continue
                for off, ln in meta_r:
                    pos = 0
                    while pos < ln:
                        d = self._domain_of(off + pos, lo, dsize, nd)
                        if aggs[d] == comm.rank:
                            expect.add(r)
                        dom_end = lo + (d + 1) * dsize
                        pos += min(ln - pos, dom_end - (off + pos))
            collected = list(local)
            for src in sorted(expect):
                chunk = yield from comm.recv(src, tag)
                collected.extend(chunk)
            yield from self._write_coalesced(collected)
        elif local:
            # Not an aggregator but kept local pieces (only possible when I
            # am not in aggs) — cannot happen since local pieces were popped
            # for rank==owner; guard anyway.
            for off, spec in local:
                yield from self.write_at(off, spec)
        for s in sends:
            yield s
        yield from comm.barrier()

    def _write_coalesced(self, collected: List[Piece]) -> Generator:
        """Sort, merge adjacent pieces, and issue one write per contiguous run."""
        collected.sort(key=lambda p: p[0])
        i = 0
        while i < len(collected):
            run_off = collected[i][0]
            run = [collected[i][1]]
            end = run_off + collected[i][1].length
            j = i + 1
            while j < len(collected) and collected[j][0] == end:
                run.append(collected[j][1])
                end += collected[j][1].length
                j += 1
            spec = run[0] if len(run) == 1 else CompositeData(DataView(run))
            yield from self.write_at(run_off, spec)
            i = j

    def _two_phase_read(self, requests: List[Request]) -> Generator:
        comm, env = self.ctx.comm, self.ctx.env
        all_meta = yield from comm.allgather(list(requests),
                                             nbytes=16 * max(1, len(requests)))
        bounds = self._domain_bounds(all_meta)
        if bounds is None:
            yield from comm.barrier()
            return []
        lo, hi, dsize, aggs = bounds
        nd = len(aggs)
        tag = ("_cb_r", comm._next_tag()[1])
        # Aggregator phase: read my domain's needed span once, then serve.
        domain_views: dict = {}
        if comm.rank in aggs:
            d = aggs.index(comm.rank)
            d_lo, d_hi = lo + d * dsize, min(hi, lo + (d + 1) * dsize)
            need_lo, need_hi = None, None
            serves: List[Tuple[int, int, int]] = []  # (dest_rank, off, len)
            for r, meta_r in enumerate(all_meta):
                for off, ln in meta_r:
                    s, e = max(off, d_lo), min(off + ln, d_hi)
                    if e > s:
                        serves.append((r, s, e - s))
                        need_lo = s if need_lo is None else min(need_lo, s)
                        need_hi = e if need_hi is None else max(need_hi, e)
            if need_lo is not None:
                big = yield from self.read_at(need_lo, need_hi - need_lo)
                for dest, s, n in serves:
                    piece = big.slice(s - need_lo, min(n, max(0, big.length - (s - need_lo))))
                    if dest == comm.rank:
                        domain_views[(s, n)] = piece
                    else:
                        yield from comm.send(dest, ((s, n), piece), piece.length, tag)
        # Requester phase: assemble each request from owner pieces.
        out: List[DataView] = []
        expected: dict = {}
        for off, ln in requests:
            pos = 0
            while pos < ln:
                d = self._domain_of(off + pos, lo, dsize, nd)
                dom_end = lo + (d + 1) * dsize
                n = min(ln - pos, dom_end - (off + pos))
                expected.setdefault((off + pos, n), aggs[d])
                pos += n
        # Deterministic insertion order (ascending offset walk); the recv
        # sequence below must match the senders' dispatch order, so do NOT
        # re-sort it.
        for key, owner in expected.items():  # repro: noqa[REP004] -- must mirror the senders' dispatch order; do not re-sort
            if owner == comm.rank:
                continue
            got_key, piece = yield from comm.recv(owner, tag)
            domain_views[got_key] = piece
        for off, ln in requests:
            pieces: List[DataSpec] = []
            pos = 0
            while pos < ln:
                d = self._domain_of(off + pos, lo, dsize, nd)
                dom_end = lo + (d + 1) * dsize
                n = min(ln - pos, dom_end - (off + pos))
                view = domain_views[(off + pos, n)]
                pieces.extend(view.pieces)
                pos += n
            out.append(DataView(pieces))
        yield from comm.barrier()
        return out
