"""MPI-IO layer: File API, ADIO drivers (UFS/PLFS), collective buffering."""

from .adio import ADIODriver, PlfsDriver, UfsDriver
from .file import MPIFile
from .hints import Hints

__all__ = ["ADIODriver", "PlfsDriver", "UfsDriver", "MPIFile", "Hints"]
