"""ADIO: the abstract device interface under MPI-IO (Thakur et al. [13]).

The paper's third PLFS interface is an ADIO driver inside MPI-IO (§II):
rerouting MPI-IO calls into the PLFS library while inheriting the job's
communicator — which is what makes the collective index optimizations
possible.  We mirror that structure: :class:`MPIFile` (in
:mod:`repro.mpiio.file`) speaks to one of two drivers:

* :class:`UfsDriver` — pass-through to a backing volume (direct parallel
  file system access, the paper's "without PLFS" baseline);
* :class:`PlfsDriver` — routes through :class:`repro.plfs.PlfsMount`.
"""

from __future__ import annotations

from typing import Generator

from ..errors import InvalidArgument, UnsupportedOperation
from ..faults.policies import RetryPolicy, retrying
from ..pfs.data import DataSpec
from ..pfs.volume import Client, Volume
from ..plfs.api import PlfsMount
from ..plfs.reader import PlfsReadHandle
from ..plfs.writer import PlfsWriteHandle

__all__ = ["ADIODriver", "UfsDriver", "PlfsDriver"]


class ADIODriver:
    """Driver interface: open/write_at/read_at/size/close, all generators."""

    name = "abstract"

    def open(self, client: Client, comm, path: str, mode: str) -> Generator:
        """Open *path*; collective when *comm* is given. Returns a handle."""
        raise NotImplementedError

    def write_at(self, handle, offset: int, spec: DataSpec) -> Generator:
        """Write *spec* at *offset* through the driver's handle."""
        raise NotImplementedError

    def read_at(self, handle, offset: int, length: int) -> Generator:
        """Read a byte range; returns a DataView."""
        raise NotImplementedError

    def size(self, handle) -> int:
        """Current (driver-specific) size visible through the handle."""
        raise NotImplementedError

    def close(self, handle, comm) -> Generator:
        """Close the handle (collective for PLFS write handles)."""
        raise NotImplementedError


class UfsDriver(ADIODriver):
    """Direct access to the underlying parallel file system."""

    name = "ufs"

    def __init__(self, volume: Volume, retry: RetryPolicy = None):
        self.volume = volume
        self.retry = retry

    def open(self, client: Client, comm, path: str, mode: str) -> Generator:
        """Open on the backing volume; rank 0 creates/truncates shared files."""
        if mode not in ("r", "w", "rw"):
            raise InvalidArgument(path, f"bad mode {mode!r}")
        env = self.volume.env
        creating = "w" in mode
        if comm is not None and comm.size > 1 and creating:
            # Rank 0 creates (and truncates); everyone else opens after.
            # Each rank retries only its own open, never the bcast — a
            # retried collective would desynchronize the communicator.
            if comm.rank == 0:
                fh = yield from retrying(env, self.retry, lambda: self.volume.open(
                    client, path, mode, create=True, truncate=True))
                yield from comm.bcast(None, nbytes=8, root=0)
            else:
                yield from comm.bcast(None, nbytes=8, root=0)
                fh = yield from retrying(env, self.retry, lambda: self.volume.open(
                    client, path, mode))
        else:
            fh = yield from retrying(env, self.retry, lambda: self.volume.open(
                client, path, mode, create=creating, truncate=creating))
        return fh

    def write_at(self, handle, offset: int, spec: DataSpec) -> Generator:
        """Pass-through pwrite (retried whole under the driver's policy)."""
        yield from retrying(self.volume.env, self.retry,
                            lambda: handle.write(offset, spec))

    def read_at(self, handle, offset: int, length: int) -> Generator:
        """Pass-through pread (retried whole under the driver's policy)."""
        view = yield from retrying(self.volume.env, self.retry,
                                   lambda: handle.read(offset, length))
        return view

    def size(self, handle) -> int:
        """Backing file size."""
        return handle.size()

    def close(self, handle, comm) -> Generator:
        """Plain close (independent, retried under the driver's policy)."""
        yield from retrying(self.volume.env, self.retry, lambda: handle.close())


class PlfsDriver(ADIODriver):
    """MPI-IO routed through the PLFS middleware (the paper's ADIO layer)."""

    name = "plfs"

    def __init__(self, mount: PlfsMount, retry: RetryPolicy = None):
        self.mount = mount
        self.retry = retry

    def open(self, client: Client, comm, path: str, mode: str) -> Generator:
        """Route to PLFS open_write/open_read; rejects read-write mode.

        The retry policy rides on the returned handle, so write_at/read_at
        below stay pass-throughs — the PLFS layers do their own retrying.
        """
        if mode == "rw":
            raise UnsupportedOperation(
                path, "PLFS does not support read-write opens of shared files")
        if mode == "w":
            handle = yield from self.mount.open_write(client, path, comm,
                                                      retry=self.retry)
        else:
            handle = yield from self.mount.open_read(client, path, comm,
                                                     retry=self.retry)
        return handle

    def write_at(self, handle, offset: int, spec: DataSpec) -> Generator:
        """Logical write -> log append + index record."""
        if not isinstance(handle, PlfsWriteHandle):
            raise UnsupportedOperation(message="write on a read-only PLFS handle")
        yield from handle.write(offset, spec)

    def read_at(self, handle, offset: int, length: int) -> Generator:
        """Logical read resolved through the global index."""
        if not isinstance(handle, PlfsReadHandle):
            raise UnsupportedOperation(message="read on a write-only PLFS handle")
        view = yield from handle.read(offset, length)
        return view

    def size(self, handle) -> int:
        """Logical size (reader: global index; writer: own EOF)."""
        if isinstance(handle, PlfsReadHandle):
            return handle.size
        return handle.eof

    def close(self, handle, comm) -> Generator:
        """Close; write handles run the configured flatten collectively."""
        if isinstance(handle, PlfsWriteHandle):
            yield from self.mount.close_write(handle, comm)
        else:
            yield from handle.close()
