"""MPI-IO hints (the subset the paper's workloads use).

Collective buffering (§IV-D6, [18]): two-phase I/O that funnels many
ranks' small strided accesses through a few aggregator ranks which issue
large contiguous requests.  The paper enables it for LANL 3 (1024-byte
records) via hints, exactly as ROMIO's ``romio_cb_write`` would.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigError
from ..units import MiB

__all__ = ["Hints"]


@dataclass(frozen=True)
class Hints:
    """Per-open MPI-IO hints."""

    cb_enable: bool = False       # two-phase collective buffering on *_all ops
    cb_nodes: int = 0             # aggregator count; 0 = one per compute node
    cb_buffer_size: int = 16 * MiB  # max bytes an aggregator writes per round

    def __post_init__(self) -> None:
        if self.cb_nodes < 0:
            raise ConfigError("cb_nodes must be >= 0")
        if self.cb_buffer_size <= 0:
            raise ConfigError("cb_buffer_size must be positive")
