"""Fig. 5 — read performance across the six I/O kernels (§IV-D).

Regenerates the per-kernel PLFS-vs-direct effective read bandwidth sweeps
(Pixie3D, ARAMCO, IOR, MADbench, LANL 1, LANL 3).
"""

from conftest import run_figure

from repro.harness.figures import fig5


def test_fig5_kernels(benchmark, scale):
    tables = run_figure(benchmark, fig5, scale)
    by_id = {t.id: t for t in tables}

    # fig5a Pixie3D: "extremely close" (paper's words); direct competitive.
    pixie = by_id["fig5a"].column("plfs_speedup")
    assert all(0.7 < s < 1.6 for s in pixie)

    # fig5b ARAMCO (strong scaling): PLFS wins small, advantage decays with
    # process count (the paper's crossover toward direct).
    aramco = by_id["fig5b"].column("plfs_speedup")
    assert aramco[0] > 1.5
    assert aramco[-1] < aramco[0] / 1.5

    # fig5c IOR: PLFS wins at every count (paper: up to 4.5x).
    ior = by_id["fig5c"].column("plfs_speedup")
    assert all(s > 1.5 for s in ior)

    # fig5d MADbench: PLFS wins.
    assert all(s > 1.0 for s in by_id["fig5d"].column("plfs_speedup"))

    # fig5e LANL 1: PLFS wins at all counts (paper max 10x).
    lanl1 = by_id["fig5e"].column("plfs_speedup")
    assert all(s > 1.5 for s in lanl1)

    # fig5f LANL 3 (collective buffering): parity at small scale, PLFS
    # edges ahead at the largest (paper's "interesting observation").
    lanl3 = by_id["fig5f"].column("plfs_speedup")
    assert 0.8 < lanl3[0] < 1.25
    assert lanl3[-1] > 1.1
