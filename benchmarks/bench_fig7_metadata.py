"""Fig. 7 — N-N metadata performance vs metadata-server count (§V)."""

from conftest import run_figure

from repro.harness.figures import fig7


def test_fig7_metadata(benchmark, scale):
    tables = run_figure(benchmark, fig7, scale)
    open_t, close_t = tables
    ks = scale.fig7_mds_counts
    last = open_t.rows[-1]
    cols = open_t.columns
    plfs_times = [last[cols.index(f"PLFS-{k}")] for k in ks]
    direct = last[cols.index("W/O PLFS")]
    # More MDS -> faster opens, monotonically.
    assert all(a > b for a, b in zip(plfs_times, plfs_times[1:]))
    # PLFS with one MDS loses to direct (container burden)...
    assert plfs_times[0] > direct
    # ...but with the most MDS it wins (paper: PLFS-6/9 beat direct).
    assert plfs_times[-1] < direct
    # Closes: direct always wins (paper Fig. 7b).
    for row in close_t.rows:
        d = row[close_t.columns.index("W/O PLFS")]
        assert all(row[close_t.columns.index(f"PLFS-{k}")] > d for k in ks)
