"""Fig. 8 — large-scale read and metadata results on the Cielo model (§VI).

At REPRO_SCALE=paper this sweeps to 65,536 processes (read bandwidth) and
32,768 processes (metadata) and takes tens of minutes; the default small
scale sweeps the same shapes at 2,048.
"""

from conftest import run_figure

from repro.harness.figures import fig8


def test_fig8_large_scale(benchmark, scale):
    tables = run_figure(
        benchmark, fig8, scale,
        extra_keys={
            "max_metadata_speedup": lambda ts: max(
                t for tt in ts if tt.id == "fig8d" for t in tt.column("speedup")),
        },
    )
    by_id = {t.id: t for t in tables}

    # fig8a: N-1 through PLFS keeps up with N-N direct (within ~25% or
    # better at the top count) — the whole point of the middleware.
    a = by_id["fig8a"]
    top = a.rows[-1]
    nn_direct, nn_plfs, n1_plfs = top[1], top[2], top[3]
    assert n1_plfs > 0.75 * nn_direct
    assert nn_plfs > 0.6 * nn_direct

    # fig8b: more MDS, faster N-N opens, at every process count.
    b = by_id["fig8b"]
    for row in b.rows:
        assert row[1] > row[2] > row[3]

    # fig8c: 10 federated MDS beat 1 for the N-1 open storm at scale.
    c = by_id["fig8c"]
    assert c.rows[-1][1] > c.rows[-1][2]

    # fig8d: the metadata headline — PLFS-10 beats direct, increasingly
    # with scale (paper: 17x at 32,768 procs).
    d = by_id["fig8d"]
    speedups = d.column("speedup")
    assert all(s > 2 for s in speedups)
    assert speedups[-1] >= speedups[0]
