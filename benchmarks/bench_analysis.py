"""Cost guards for the collective-matching analyzer and trace validator.

Two contracts keep the new tooling affordable:

* **the full-tree collectives lint stays under 30 s** — it runs in CI on
  every push, so its wall time bounds the feedback loop;
* **tracer-off harness overhead stays under 2 %** — every communicator
  construction checks ``env.collective_tracer`` and every collective
  checks ``self._shared.tracer``; with no tracer attached those checks
  must be all the instrumentation costs.

A third, informational benchmark times the tracer *on*, so the price of
``--validate-collectives`` stays visible in the benchmark trend line.
"""

import time
from pathlib import Path

from repro.analysis.collectives import analyze_paths
from repro.analysis.config import load_config
from repro.cluster import Cluster, ClusterSpec, NodeSpec
from repro.mpi import run_job
from repro.mpi.trace import attach_tracer
from repro.sim import Engine

REPO = Path(__file__).resolve().parents[1]
SRC = REPO / "src"

_ROUNDS = 40


def _job(tracer=False):
    """A collective-heavy job: the shape the tracer instruments most."""
    env = Engine()
    cluster = Cluster(env, ClusterSpec(name="b", n_nodes=4,
                                       node=NodeSpec(cores=4)))
    if tracer:
        attach_tracer(env, strict=True)

    def fn(ctx):
        c = ctx.comm
        for _ in range(_ROUNDS):
            yield from c.barrier()
            data = yield from c.bcast("x", nbytes=64, root=0)
            yield from c.gather(data, nbytes=64, root=0)
        return None

    run_job(env, cluster, 16, fn)


# -- the <30 s full-tree lint guard ------------------------------------------

def test_full_tree_collectives_lint_under_30s():
    """CI gates on ``python -m repro.analysis collectives src/``; the
    interprocedural pass (CFG + path enumeration + call-graph summaries
    over the whole tree) must stay interactive."""
    config = load_config(REPO / "pyproject.toml")
    t0 = time.perf_counter()
    findings = analyze_paths([str(SRC)], config)
    dt = time.perf_counter() - t0
    assert findings == [], "\n".join(f.render() for f in findings)
    assert dt < 30.0, f"full-tree collectives lint took {dt:.1f}s (>30s)"


# -- the <2% tracer-off harness overhead guard -------------------------------

def test_tracer_off_overhead_under_two_percent():
    """With no tracer attached, the per-collective instrumentation must
    cost no more than 2% over a build with ``_traced`` compiled out.

    The baseline arm monkeypatches ``Comm._traced`` to return the
    generator untouched — the pre-instrumentation behavior — and the
    interleaved min-of-repeats cancels warm-up and scheduler noise, so
    the residual is the true price of the shipped off path (one
    attribute check per collective).
    """
    from repro.mpi.comm import Comm

    shipped = Comm._traced

    def _bypass(self, op, root, gen):
        return gen

    best_plain = best_instr = float("inf")
    try:
        for _ in range(7):
            Comm._traced = _bypass
            t0 = time.perf_counter()
            _job(tracer=False)
            best_plain = min(best_plain, time.perf_counter() - t0)
            Comm._traced = shipped
            t0 = time.perf_counter()
            _job(tracer=False)
            best_instr = min(best_instr, time.perf_counter() - t0)
    finally:
        Comm._traced = shipped
    assert best_instr <= best_plain * 1.02 + 1e-3, (
        f"tracer-off regression: instrumented {best_instr * 1e3:.2f} ms "
        f"vs bypassed {best_plain * 1e3:.2f} ms")


# -- informational: what --validate-collectives costs ------------------------

def test_tracer_on_throughput(benchmark):
    """Tracer-on wall time for the same job, tracked as a trend line so
    the validator's price stays known (EXPERIMENTS.md quotes it)."""
    benchmark(lambda: _job(tracer=True))


def test_tracer_on_vs_off_ratio():
    """The validator records one tuple append per top-level collective
    per rank — it must stay within 1.35x of the untraced run."""
    best_off = best_on = float("inf")
    for _ in range(7):
        t0 = time.perf_counter()
        _job(tracer=False)
        best_off = min(best_off, time.perf_counter() - t0)
        t0 = time.perf_counter()
        _job(tracer=True)
        best_on = min(best_on, time.perf_counter() - t0)
    assert best_on <= best_off * 1.35 + 1e-3, (
        f"tracer-on overhead too high: {best_on * 1e3:.2f} ms vs "
        f"{best_off * 1e3:.2f} ms")
