"""Microbenchmarks of the simulation kernel itself (events/sec budget)."""

import time

from repro.analysis.sanitize import tracked
from repro.sim import Engine, FairShareServer
from repro.sim.engine import Process


def test_engine_event_throughput(benchmark):
    """Timeout-chain throughput: the floor cost of every simulated op."""

    def run():
        env = Engine()

        def proc(env):
            for _ in range(2000):
                yield env.timeout(1.0)

        for _ in range(50):
            env.process(proc(env))
        env.run()
        return env.now

    assert benchmark(run) == 2000.0


def test_zero_delay_storm(benchmark):
    """Succeed-chain storm: every event is same-timestamp, zero-delay.

    This is the immediate-queue fast path in isolation — no timeouts, so
    a heap-based engine pays O(log n) per trigger while the FIFO deque
    pays O(1).  The pattern is what bulk-synchronous completions
    (collective fan-in, AllOf joins) look like from the kernel's side.
    """

    def run():
        env = Engine()

        def proc(env, depth):
            for _ in range(depth):
                ev = env.event()
                ev.succeed()
                yield ev
            return env.now

        for _ in range(100):
            env.process(proc(env, 1000))
        env.run()
        return env.now

    assert benchmark(run) == 0.0  # simulated time never advances


def test_heap_delay_storm(benchmark):
    """The same event volume through the time heap (distinct timestamps).

    The comparison partner of :func:`test_zero_delay_storm`: identical
    event count, but every event carries a unique delay so each takes the
    heap path.  The zero-delay storm should beat this comfortably.
    """

    def run():
        env = Engine()

        def proc(env, i):
            for k in range(1000):
                yield env.timeout(1.0 + i * 1e-7 + k * 1e-9)
            return env.now

        for i in range(100):
            env.process(proc(env, i))
        env.run()
        return env.now

    assert benchmark(run) > 0.0


def test_fair_share_throughput(benchmark):
    """GPS server with heavy churn: arrivals/completions interleaved."""

    def run():
        env = Engine()
        srv = FairShareServer(env, capacity=1e9)

        def proc(env, i):
            yield env.timeout(i * 1e-6)
            for _ in range(200):
                yield srv.serve(1e6)

        for i in range(100):
            env.process(proc(env, i))
        env.run()
        return srv.total_served

    assert benchmark(run) == 100 * 200 * 1e6


def test_serve_many_bulk_arrival(benchmark):
    """Batched same-instant arrivals: one serve_many per round.

    The bulk-synchronous case where one caller submits a whole wave of
    demands at once — one virtual-time advance, one heapify, and at most
    one timer per round instead of one of each per job.
    """

    def run():
        env = Engine()
        srv = FairShareServer(env, capacity=1e9)

        def driver(env):
            for round_no in range(200):
                events = srv.serve_many([1e6 + i for i in range(100)])
                yield env.all_of(events)

        env.process(driver(env))
        env.run()
        return srv.total_served

    expected = 200 * (100 * 1e6 + sum(range(100)))
    assert benchmark(run) == expected


def test_sanitizer_off_is_structurally_free():
    """With no sanitizer attached, the race-detection machinery must cost
    nothing: tracked() hands back the very same dict (every later access
    is a plain dict op), and the engine's process factory is the stock
    ``partial(Process, env)`` — no wrapper generator in the resume path."""
    env = Engine()
    d = {}
    assert tracked(env, d, "state") is d
    assert env.sanitizer is None
    assert getattr(env.process, "func", None) is Process
    assert getattr(env.process, "args", None) == (env,)


def test_sanitizer_off_overhead_under_two_percent():
    """Dict-churn workload through tracked() containers vs. plain dicts.

    Because ``tracked()`` is the identity when the sanitizer is off, both
    sides execute identical bytecode on identical objects; the measured
    ratio is pure noise around 1.0 and the 2% bound documents the
    guarantee.  min-of-repeats keeps scheduler noise out of the ratio.
    """

    def workload(wrap):
        env = Engine()
        d = wrap(env, {}, "state") if wrap is not None else {}

        def proc(env, base):
            for i in range(2000):
                d[(base + i) % 64] = i
                _ = d.get((base + i) % 64)
                yield env.timeout(1.0)

        for p in range(20):
            env.process(proc(env, p * 7))
        env.run()
        return env.now

    def timed(fn):
        t0 = time.perf_counter()
        fn()
        return time.perf_counter() - t0

    # Interleave A/B repetitions so frequency scaling and scheduler noise
    # hit both sides alike; compare the best (least-perturbed) run each.
    workload(tracked), workload(None)   # warm up both paths
    with_tracked = min(timed(lambda: workload(tracked)) for _ in range(7))
    plain = min(timed(lambda: workload(None)) for _ in range(7))
    with_tracked = min(with_tracked,
                       *(timed(lambda: workload(tracked)) for _ in range(3)))
    plain = min(plain, *(timed(lambda: workload(None)) for _ in range(3)))
    overhead = with_tracked / plain - 1.0
    assert overhead < 0.02, (
        f"sanitizer-off overhead {overhead:.1%} exceeds 2% "
        f"(tracked {with_tracked:.4f}s vs plain {plain:.4f}s)")
