"""Microbenchmarks of the simulation kernel itself (events/sec budget)."""

from repro.sim import Engine, FairShareServer


def test_engine_event_throughput(benchmark):
    """Timeout-chain throughput: the floor cost of every simulated op."""

    def run():
        env = Engine()

        def proc(env):
            for _ in range(2000):
                yield env.timeout(1.0)

        for _ in range(50):
            env.process(proc(env))
        env.run()
        return env.now

    assert benchmark(run) == 2000.0


def test_fair_share_throughput(benchmark):
    """GPS server with heavy churn: arrivals/completions interleaved."""

    def run():
        env = Engine()
        srv = FairShareServer(env, capacity=1e9)

        def proc(env, i):
            yield env.timeout(i * 1e-6)
            for _ in range(200):
                yield srv.serve(1e6)

        for i in range(100):
            env.process(proc(env, i))
        env.run()
        return srv.total_served

    assert benchmark(run) == 100 * 200 * 1e6
