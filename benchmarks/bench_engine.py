"""Microbenchmarks of the simulation kernel itself (events/sec budget)."""

from repro.sim import Engine, FairShareServer


def test_engine_event_throughput(benchmark):
    """Timeout-chain throughput: the floor cost of every simulated op."""

    def run():
        env = Engine()

        def proc(env):
            for _ in range(2000):
                yield env.timeout(1.0)

        for _ in range(50):
            env.process(proc(env))
        env.run()
        return env.now

    assert benchmark(run) == 2000.0


def test_zero_delay_storm(benchmark):
    """Succeed-chain storm: every event is same-timestamp, zero-delay.

    This is the immediate-queue fast path in isolation — no timeouts, so
    a heap-based engine pays O(log n) per trigger while the FIFO deque
    pays O(1).  The pattern is what bulk-synchronous completions
    (collective fan-in, AllOf joins) look like from the kernel's side.
    """

    def run():
        env = Engine()

        def proc(env, depth):
            for _ in range(depth):
                ev = env.event()
                ev.succeed()
                yield ev
            return env.now

        for _ in range(100):
            env.process(proc(env, 1000))
        env.run()
        return env.now

    assert benchmark(run) == 0.0  # simulated time never advances


def test_heap_delay_storm(benchmark):
    """The same event volume through the time heap (distinct timestamps).

    The comparison partner of :func:`test_zero_delay_storm`: identical
    event count, but every event carries a unique delay so each takes the
    heap path.  The zero-delay storm should beat this comfortably.
    """

    def run():
        env = Engine()

        def proc(env, i):
            for k in range(1000):
                yield env.timeout(1.0 + i * 1e-7 + k * 1e-9)
            return env.now

        for i in range(100):
            env.process(proc(env, i))
        env.run()
        return env.now

    assert benchmark(run) > 0.0


def test_fair_share_throughput(benchmark):
    """GPS server with heavy churn: arrivals/completions interleaved."""

    def run():
        env = Engine()
        srv = FairShareServer(env, capacity=1e9)

        def proc(env, i):
            yield env.timeout(i * 1e-6)
            for _ in range(200):
                yield srv.serve(1e6)

        for i in range(100):
            env.process(proc(env, i))
        env.run()
        return srv.total_served

    assert benchmark(run) == 100 * 200 * 1e6


def test_serve_many_bulk_arrival(benchmark):
    """Batched same-instant arrivals: one serve_many per round.

    The bulk-synchronous case where one caller submits a whole wave of
    demands at once — one virtual-time advance, one heapify, and at most
    one timer per round instead of one of each per job.
    """

    def run():
        env = Engine()
        srv = FairShareServer(env, capacity=1e9)

        def driver(env):
            for round_no in range(200):
                events = srv.serve_many([1e6 + i for i in range(100)])
                yield env.all_of(events)

        env.process(driver(env))
        env.run()
        return srv.total_served

    expected = 200 * (100 * 1e6 + sum(range(100)))
    assert benchmark(run) == expected
