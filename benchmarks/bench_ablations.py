"""Ablation benches for the design choices DESIGN.md calls out (§IV, §V)."""

from conftest import run_figure

from repro.harness.figures import ablations


def test_ablations(benchmark, scale):
    tables = run_figure(benchmark, ablations, scale)
    by_id = {t.id: t for t in tables}

    # Threshold: flatten engages only above the per-writer index size, and
    # engaging it buys a faster read open.
    thr = by_id["ablate-threshold"]
    flat = thr.column("flattened")
    opens = thr.column("read_open_s")
    assert flat[0] is False and flat[-1] is True
    assert opens[-1] < opens[0]

    # Federation: container spreading fixes N-N, subdir spreading N-1.
    fed = by_id["ablate-federation"]
    rows = {r[0]: (r[1], r[2]) for r in fed.rows}
    assert rows["container"][0] < rows["none"][0]
    assert rows["subdir"][1] < rows["none"][1]
