"""Shared helpers for the figure-reproduction benchmarks.

Each ``bench_figX`` module regenerates one of the paper's figures at the
scale selected by ``REPRO_SCALE`` (default ``small``; set ``paper`` for
the published process counts) and prints the same rows/series the paper
plots.  pytest-benchmark times the regeneration itself; the *reproduced
numbers* land in ``extra_info`` and on stdout.
"""

import pytest

from repro.harness.report import render_tables
from repro.harness.scales import get_scale


@pytest.fixture(scope="session")
def scale():
    return get_scale()


def run_figure(benchmark, fig_fn, scale, extra_keys=None):
    """Run a figure function once under pytest-benchmark, print its tables."""
    result = {}

    def go():
        result["tables"] = fig_fn(scale)
        return result["tables"]

    tables = benchmark.pedantic(go, rounds=1, iterations=1, warmup_rounds=0)
    print()
    print(render_tables(tables))
    benchmark.extra_info["scale"] = scale.name
    for table in tables:
        benchmark.extra_info[table.id + "_rows"] = len(table.rows)
    if extra_keys:
        for key, fn in extra_keys.items():
            benchmark.extra_info[key] = fn(tables)
    return tables
