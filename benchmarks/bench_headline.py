"""The paper's §I/§VIII headline: write 150x / read 10x / metadata 17x."""

from conftest import run_figure

from repro.harness.figures import headline


def test_headline(benchmark, scale):
    (table,) = run_figure(benchmark, headline, scale)
    measured = {row[0]: row[2] for row in table.rows}
    assert float(measured["write speedup"].rstrip("x")) > 50
    assert float(measured["read speedup"].rstrip("x")) > 1.5
    assert float(measured["metadata speedup"].rstrip("x")) > 2
