"""Model-checker cost guards: free when off, faithful when on.

Three contracts the scheduler hook (:meth:`repro.sim.Engine.attach_scheduler`)
must keep:

* **off by default and off after detach** — a fresh engine and a
  detached one run the stock inlined loop (the `_sched is None` check is
  per-``run()``, not per-event);
* **explorer-off throughput regresses < 2 %** — interleaved
  min-of-repeats of an identical event workload on a never-attached
  engine vs an attached-then-detached one;
* **the controlled loop with choice 0 everywhere is the stock run** —
  identical final simulated time, which is what makes the empty schedule
  (and therefore every recorded trace) an honest replay.
"""

import time

from repro.sim import Engine

_PROCS = 20
_STEPS = 2000


def _workload(env):
    def proc(env):
        for _ in range(_STEPS):
            yield env.timeout(1.0)

    for _ in range(_PROCS):
        env.process(proc(env))


class _DefaultScheduler:
    """Always chooses index 0: reproduces the uncontrolled order."""

    def select(self, ready):
        return 0

    def fired(self, eid, event):
        pass

    def quiescent(self, now):
        pass


def _run_stock():
    env = Engine()
    _workload(env)
    env.run()
    return env.now


def _run_attach_detach():
    env = Engine()
    env.attach_scheduler(_DefaultScheduler())
    env.detach_scheduler()
    _workload(env)
    env.run()
    return env.now


# -- structural: the hook is off unless asked for ---------------------------

def test_scheduler_off_by_default():
    assert Engine().scheduler is None


def test_detach_restores_stock_loop():
    env = Engine()
    sched = _DefaultScheduler()
    env.attach_scheduler(sched)
    assert env.scheduler is sched
    env.detach_scheduler()
    assert env.scheduler is None


# -- fidelity: controlled default == uncontrolled ---------------------------

def test_controlled_default_schedule_matches_stock():
    t_stock = _run_stock()
    env = Engine()
    env.attach_scheduler(_DefaultScheduler())
    _workload(env)
    env.run()
    assert env.now == t_stock == float(_STEPS)


# -- the <2% guard -----------------------------------------------------------

def test_explorer_off_overhead_under_two_percent():
    """Attached-then-detached engines must run at stock speed.

    Interleaved min-of-repeats: alternating the two arms within one
    process cancels warm-up and frequency drift, and the min discards
    scheduler noise — the residual difference is the hook's true cost,
    which is one per-``run()`` None check.
    """
    best_stock = best_detached = float("inf")
    for _ in range(15):
        t0 = time.perf_counter()
        _run_stock()
        best_stock = min(best_stock, time.perf_counter() - t0)
        t0 = time.perf_counter()
        _run_attach_detach()
        best_detached = min(best_detached, time.perf_counter() - t0)
    # 1 ms absolute slack keeps sub-millisecond timer jitter from
    # mattering if the workload ever shrinks.
    assert best_detached <= best_stock * 1.02 + 1e-3, (
        f"explorer-off regression: detached {best_detached * 1e3:.2f} ms "
        f"vs stock {best_stock * 1e3:.2f} ms")


# -- controlled-loop throughput (informational trend line) -------------------

def test_controlled_loop_throughput(benchmark):
    """Same workload through the decision-point loop: the price of
    exploration itself, tracked so checker budgets stay predictable."""

    def run():
        env = Engine()
        env.attach_scheduler(_DefaultScheduler())
        _workload(env)
        env.run()
        return env.now

    assert benchmark(run) == float(_STEPS)
