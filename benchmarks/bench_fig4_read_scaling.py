"""Fig. 4 — read-scaling of the three index-aggregation designs (§IV-C).

Regenerates all four panels (read open time, effective read bandwidth,
write close time, write bandwidth) for Original vs Index Flatten vs
Parallel Index Read on the 64-node cluster model.
"""

from conftest import run_figure

from repro.harness.figures import fig4


def test_fig4_read_scaling(benchmark, scale):
    tables = run_figure(benchmark, fig4, scale)
    a, b, c, d = tables
    top = max(scale.fig4_streams)

    def row(table, streams):
        return dict(zip(table.columns, table.rows[table.column("streams").index(streams)]))

    open_top = row(a, top)
    # Paper shape: both techniques beat the Original design, increasingly
    # with scale, and the Original's open time grows superlinearly.
    assert open_top["flatten"] < open_top["original"]
    assert open_top["parallel"] < open_top["original"]
    opens = a.column("original")
    assert opens[-1] / opens[0] > (top / scale.fig4_streams[0])  # superlinear
    # Read bandwidth ordering at the top count: flatten >= parallel > original.
    bw_top = row(b, top)
    assert bw_top["flatten"] >= bw_top["parallel"] > bw_top["original"]
    # Caching lets warm re-reads exceed the 1250 MB/s storage peak (§IV-C).
    assert bw_top["flatten"] > 1250
    # Flatten pays at write close (§IV-A).
    close_top = row(c, top)
    assert close_top["flatten"] >= close_top["parallel"]
