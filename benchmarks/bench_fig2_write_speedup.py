"""Fig. 2 — N-1 write speedups of PLFS across the application suite.

Regenerates the paper's write-speedup summary (§III) and the portability
companion (PanFS/Lustre/GPFS).  Paper shape: every app wins through PLFS,
with speedups from a few x up to ~150x for the small-unaligned-record
codes.
"""

from conftest import run_figure

from repro.harness.figures import fig2


def test_fig2_write_speedups(benchmark, scale):
    tables = run_figure(
        benchmark, fig2, scale,
        extra_keys={
            "max_write_speedup": lambda ts: max(
                v for t in ts for v in t.column("speedup")),
        },
    )
    main, porta = tables
    speedups = main.column("speedup")
    # Reproduction assertions (shape, not absolutes): PLFS must win for the
    # small/unaligned-record apps, dramatically for the worst one.
    by_app = dict(zip(main.column("app"), speedups))
    assert by_app["LANL 2"] > 10
    assert by_app["FLASH io"] > 2
    assert by_app["LANL 1"] > 2
    # Portability: the win shows on all three file systems (§III).
    assert all(s > 10 for s in porta.column("speedup"))
    # The 150x headline band is reached somewhere in the suite.
    assert max(v for t in tables for v in t.column("speedup")) > 100
