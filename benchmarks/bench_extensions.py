"""Benches for the post-paper extensions: burst buffers and the campaign loop.

Not paper figures — these quantify the §VIII direction (node-local staging)
and the §I motivation (failure-driven checkpointing efficiency) on the same
simulated platform as the figure benches.
"""

from repro.harness.setup import build_world
from repro.mpi import run_job
from repro.pfs.data import PatternData
from repro.plfs import PlfsBurstMount, PlfsConfig
from repro.units import KB, MB
from repro.workloads import direct_stack, plfs_stack
from repro.workloads.campaign import Campaign, daly_interval

NPROCS, PER_PROC, RECORD = 32, 8 * MB, 100 * KB


def checkpoint_duration(world, mount):
    def fn(ctx):
        fh = yield from mount.open_write(ctx.client, "/ckpt", ctx.comm)
        written = 0
        while written < PER_PROC:
            n = min(RECORD, PER_PROC - written)
            off = ctx.rank * RECORD + (written // RECORD) * NPROCS * RECORD
            yield from fh.write(off, PatternData(ctx.rank, written, n))
            written += n
        yield from mount.close_write(fh, ctx.comm)

    return run_job(world.env, world.cluster, NPROCS, fn).duration


def test_burst_buffer_stall_reduction(benchmark):
    """Staging must shrink the checkpoint stall several-fold and the data
    must still land, verifiably, on the parallel file system."""

    def run():
        plain = build_world(n_nodes=8, cores=4, aggregation="parallel")
        t_plain = checkpoint_duration(plain, plain.mount)
        burst = build_world(n_nodes=8, cores=4)
        burst.mount = PlfsBurstMount(burst.env, burst.volumes,
                                     PlfsConfig(aggregation="parallel"))
        t_burst = checkpoint_duration(burst, burst.mount)
        burst.env.run()  # finish drains
        assert not burst.mount.pending_drains()
        return t_plain, t_burst

    t_plain, t_burst = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\ncheckpoint stall: plain PLFS {t_plain:.3f}s -> burst {t_burst:.3f}s "
          f"({t_plain / t_burst:.1f}x)")
    benchmark.extra_info["stall_reduction"] = t_plain / t_burst
    assert t_burst < t_plain / 2


def test_campaign_efficiency_ranking(benchmark):
    """Under one failure stream, cheaper checkpoints -> higher efficiency,
    and Daly's interval beats a badly mistuned one."""

    def campaign(stack_fn, interval, seed=13):
        world = build_world(n_nodes=8, cores=4, aggregation="parallel")
        c = Campaign(world, stack_fn(world), nprocs=16, per_proc_bytes=2 * MB,
                     record_bytes=100 * KB, work_target=400.0,
                     interval=interval, mtbf=120.0, seed=seed)
        return c.run()

    def run():
        plfs = campaign(plfs_stack, interval=25.0)
        direct = campaign(direct_stack, interval=25.0)
        tuned = campaign(plfs_stack, interval=daly_interval(plfs.checkpoint_time
                                                            / max(plfs.n_checkpoints, 1),
                                                            120.0))
        mistuned = campaign(plfs_stack, interval=2.0)
        return plfs, direct, tuned, mistuned

    plfs, direct, tuned, mistuned = benchmark.pedantic(run, rounds=1, iterations=1)
    print(f"\nefficiency: plfs={plfs.efficiency:.3f} direct={direct.efficiency:.3f} "
          f"daly-tuned={tuned.efficiency:.3f} mistuned(2s)={mistuned.efficiency:.3f}")
    benchmark.extra_info["plfs_efficiency"] = plfs.efficiency
    benchmark.extra_info["direct_efficiency"] = direct.efficiency
    assert plfs.efficiency > direct.efficiency
    assert tuned.efficiency > mistuned.efficiency
